/**
 * @file
 * Table I reproduction: unaligned-access support across SIMD ISAs, as
 * executable code. For each strategy we run the idiom over every
 * alignment offset, verify the result, and report the measured
 * instruction cost per unaligned load/store plus the simulated
 * latency of a dependent-load chain on the 4-way core.
 *
 * The dependent-chain simulations run as sweep cells: one recorded
 * chain trace per strategy, simulated on the 4-way+network core,
 * sharded over --threads workers.
 */

#include <cstdio>

#include "bench_util.hh"
#include "core/report.hh"
#include "core/sweep.hh"
#include "trace/addrmap.hh"
#include "trace/emitter.hh"
#include "vmx/buffer.hh"
#include "vmx/scalarops.hh"
#include "vmx/strategies.hh"

using namespace uasim;
using vmx::RealignStrategy;

namespace {

/// Chain length of the dependent-load latency measurement.
constexpr int chainLen = 400;

/// TraceJob recording a @c chainLen dependent-load chain under @p strat.
core::TraceJob
chainTraceJob(RealignStrategy strat)
{
    // chainLen is part of the key: store entries outlive the process,
    // so the key must pin everything the recorded stream depends on.
    return {std::string("chain/") + std::string(vmx::strategyName(strat)) +
                "/" + std::to_string(chainLen),
            [strat](trace::TraceSink &sink) {
                trace::AddrNormalizer norm(sink);
                vmx::AlignedBuffer buf(4096, 5);
                // Include the guard bands: forced-aligned lvx and the
                // 32B-wide lddqu legitimately reach up to 16B outside
                // the payload.
                norm.addRegion(buf.data() - 16, buf.size() + 32,
                               0x10000000);
                trace::Emitter em(norm);
                vmx::VecOps vo(em);
                vmx::ScalarOps so(em);

                vmx::CPtr p = so.lip(buf.data());
                trace::Dep chain{};
                for (int i = 0; i < chainLen; ++i) {
                    vmx::CPtr q{p.p + 16 * (i % 64), chain};
                    vmx::Vec v = vmx::strategyLoadU(vo, strat, q, 1);
                    chain = v.dep;  // serialize: next load depends on
                                    // this result
                }
            }};
}

} // namespace

int
main(int argc, char **argv)
{
    std::printf("== Table I: support for unaligned loads in different "
                "platforms ==\n");
    std::printf("(instruction counts measured from the emitted idioms; "
                "latency is a\n simulated dependent-load chain on the "
                "4-way core, +1/+2 network)\n\n");

    const int numStrats = int(RealignStrategy::NumStrategies);

    core::SweepPlan plan;
    {
        timing::CoreConfig cfg = timing::CoreConfig::fourWayOoO();
        // The paper's proposed network: +1 cycle loads, +2 cycle
        // stores.
        cfg.lat.unalignedLoadExtra = 1;
        cfg.lat.unalignedStoreExtra = 2;
        int c = plan.addConfig("4w+net", cfg);
        for (int i = 0; i < numStrats; ++i) {
            int t = plan.addTrace(
                chainTraceJob(static_cast<RealignStrategy>(i)));
            plan.addCell(t, c);
        }
    }
    auto runner = bench::makeSweepRunner(argc, argv);
    auto results = runner.run(plan);

    auto artifact = bench::makeResult("table1_isa_support", argc, argv);
    artifact.addParam("chainLen", json::Value(chainLen));

    core::TextTable t;
    t.header({"ISA / extension", "idiom", "ld instrs", "st instrs",
              "chain cyc/load"});
    for (int i = 0; i < numStrats; ++i) {
        auto s = static_cast<RealignStrategy>(i);

        // Verify the idiom over all offsets before reporting it.
        trace::NullSink null;
        trace::Emitter em(null);
        vmx::VecOps vo(em);
        bool ok = true;
        for (int off = 0; off < 16 && ok; ++off) {
            vmx::AlignedBuffer buf(64, off);
            for (int k = 0; k < 64; ++k)
                buf[k] = std::uint8_t(13 * k + 7);
            vmx::Vec v = vmx::strategyLoadU(vo, s,
                                            vmx::CPtr{buf.data()});
            for (int k = 0; k < 16; ++k)
                ok &= v.u8(k) == buf[k];
        }

        double chain_cyc = double(results[i].sim.cycles) / chainLen;
        t.row({std::string(vmx::strategyIsa(s)),
               std::string(vmx::strategyName(s)) +
                   (ok ? "" : "  (BROKEN)"),
               std::to_string(vmx::strategyLoadInstrs(s)),
               std::to_string(vmx::strategyStoreInstrs(s)),
               core::fmt(chain_cyc, 1)});
        const std::string m{vmx::strategyName(s)};
        artifact.addMetric(m + "/ld_instrs",
                           vmx::strategyLoadInstrs(s));
        artifact.addMetric(m + "/st_instrs",
                           vmx::strategyStoreInstrs(s));
        artifact.addMetric(m + "/chain_cyc_per_load", chain_cyc);
        artifact.addMetric(m + "/verified", ok ? 1.0 : 0.0);
    }
    std::printf("%s\n", t.str().c_str());

    bench::finishArtifact(argc, argv, artifact, results, runner);
    std::printf("Paper reference: Altivec needs lvsl+2xlvx+vperm (4), "
                "Cell lvlx/lvrx (3),\nSSE2 movdqu is microcoded, and "
                "only the proposed lvxu/stvxu reach 1 instruction\nfor "
                "both directions.\n");
    return 0;
}
