/**
 * @file
 * Fig 10 reproduction: per-stage execution-time profile of the full
 * decoder for the scalar / Altivec / unaligned builds over the four
 * contents, plus the average.
 *
 * Methodology mirrors the paper's: it *estimated* full-application
 * impact from profiling. Here the functional decoder produces exact
 * per-stage work counts, the pipeline simulator prices each kernel
 * invocation on the 4-way core, and stage time = counts x costs
 * (scaled to seconds at a nominal 2.0 GHz). "Others" is the
 * variant-invariant glue measured as a fixed share of the scalar run.
 *
 * Both halves run through the sweep engine in one plan: every stage
 * microbenchmark of every variant is an independent trace cell on the
 * 4-way+network core, and each sequence's functional decode is a
 * mix-only job filling a per-sequence result slot.
 */

#include <cstdio>
#include <iterator>
#include <vector>

#include "bench_util.hh"
#include "core/report.hh"
#include "core/sweep.hh"
#include "decoder/codec.hh"
#include "decoder/profile.hh"

using namespace uasim;
using dec::StageCounts;

int
main(int argc, char **argv)
{
    const int frames = bench::sizeFlag(argc, argv, "--frames", 4, 1);
    const int qp = bench::intFlag(argc, argv, "--qp", 34);
    const bool full = bench::boolFlag(argc, argv, "--full-res");
    const double hz = 2.0e9;

    // Functional decodes are cheap; default to CIF-ish size so the
    // bench finishes quickly, switchable to the paper's 576p.
    video::Resolution res = full ? video::resolutions[0]
                                 : video::Resolution{352, 288, "cif"};

    std::printf("== Fig 10: profiling of scalar, altivec and altivec+"
                "unaligned H.264 decoder ==\n(%dx%d, %d frames/seq, "
                "qp %d, 4-way core, %.1f GHz; seconds per run)\n\n",
                res.width, res.height, frames, qp, hz / 1e9);

    auto core = timing::CoreConfig::fourWayOoO();
    core.lat.unalignedLoadExtra = 1;   // the proposed network
    core.lat.unalignedStoreExtra = 2;

    const video::Content contents[] = {
        video::Content::BlueSky, video::Content::Pedestrian,
        video::Content::Riverbed, video::Content::RushHour};
    const int numSeqs = int(std::size(contents));

    // One plan: stage-cost cells (timed on the 4-way+network core)
    // plus a mix-only functional-decode job per sequence.
    core::SweepPlan plan;
    int cfg4w = plan.addConfig("4w+net", core);
    std::vector<dec::StageCostJob> jobs[3];
    for (int v = 0; v < h264::numVariants; ++v) {
        auto variant = static_cast<h264::Variant>(v);
        jobs[v] = dec::stageCostJobs(variant);
        for (const auto &job : jobs[v]) {
            // The divisor doubles as the stage's workload size, so it
            // belongs in the persistent cache key.
            int t = plan.addTrace(
                {std::string(h264::variantName(variant)) + "/" +
                     job.key + "/" + std::to_string(job.divisor),
                 job.record});
            plan.addCell(t, cfg4w);
        }
    }
    std::vector<StageCounts> seq_counts(numSeqs);
    for (int i = 0; i < numSeqs; ++i) {
        auto content = contents[i];
        // Not cacheable: the functional decode's output is the side
        // effect of filling seq_counts[i], not a record stream.
        int t = plan.addTrace(
            {std::string("decode/") +
                 std::string(video::contentName(content)),
             [&, i, content](trace::TraceSink &) {
                 dec::CodecConfig cfg;
                 cfg.seq = video::makeParams(content, res);
                 cfg.qp = qp;
                 cfg.frames = frames;
                 dec::MiniEncoder enc(cfg);
                 dec::MiniDecoder decd(cfg);
                 for (int f = 0; f < frames; ++f)
                     decd.decodeFrame(enc.encodeFrame(f),
                                      seq_counts[i]);
             },
             /*cacheable=*/false});
        plan.addCell(t, core::SweepCell::mixOnly);
    }

    auto runner = bench::makeSweepRunner(argc, argv);
    auto results = runner.run(plan);

    auto artifact =
        bench::makeResult("fig10_decoder_profile", argc, argv);
    artifact.addParam("frames", json::Value(frames));
    artifact.addParam("qp", json::Value(qp));
    artifact.addParam("resolution",
                      json::Value(std::string(res.label)));

    // Stage costs per variant, reassembled in plan cell order.
    dec::StageCosts costs[3];
    int cell = 0;
    for (int v = 0; v < h264::numVariants; ++v) {
        for (const auto &job : jobs[v]) {
            job.assign(costs[v], double(results[cell].sim.cycles) /
                                     job.divisor);
            ++cell;
        }
    }

    core::TextTable t;
    t.header({"sequence", "variant", "MC", "IDCT", "Deb.Filter",
              "CABAC", "VideoOut", "Others", "TOTAL", "vs scalar"});

    auto emit_rows = [&](const std::string &name,
                         const StageCounts &counts) {
        double scalar_total = 0;
        double scalar_seconds = 0;
        for (int v = 0; v < h264::numVariants; ++v) {
            // Others: fixed 8% of the scalar stage subtotal, the same
            // absolute cycles in every variant.
            auto probe = dec::estimateProfile(counts, costs[v], 0.0);
            if (v == 0)
                scalar_total = probe.totalCycles();
            double others = 0.08 * scalar_total;
            auto est = dec::estimateProfile(counts, costs[v], others);
            double total_s = est.seconds(hz);
            if (v == 0)
                scalar_seconds = total_s;
            t.row({name,
                   std::string(h264::variantName(
                       static_cast<h264::Variant>(v))),
                   core::fmt(est.mc / hz, 3),
                   core::fmt(est.idct / hz, 3),
                   core::fmt(est.deblock / hz, 3),
                   core::fmt(est.cabac / hz, 3),
                   core::fmt(est.videoOut / hz, 3),
                   core::fmt(est.others / hz, 3),
                   core::fmt(total_s, 3),
                   core::fmt(scalar_seconds / total_s) + "x"});
            const std::string m =
                name + "/" +
                std::string(h264::variantName(
                    static_cast<h264::Variant>(v)));
            artifact.addMetric(m + "/mc_s", est.mc / hz);
            artifact.addMetric(m + "/idct_s", est.idct / hz);
            artifact.addMetric(m + "/deblock_s", est.deblock / hz);
            artifact.addMetric(m + "/cabac_s", est.cabac / hz);
            artifact.addMetric(m + "/video_out_s", est.videoOut / hz);
            artifact.addMetric(m + "/others_s", est.others / hz);
            artifact.addMetric(m + "/total_s", total_s);
            artifact.addMetric(m + "/vs_scalar",
                               scalar_seconds / total_s);
        }
        t.row({"", "", "", "", "", "", "", "", "", ""});
    };

    dec::StageCounts avg_counts;
    for (int i = 0; i < numSeqs; ++i) {
        avg_counts += seq_counts[i];
        emit_rows(std::string(video::contentName(contents[i])),
                  seq_counts[i]);
    }
    emit_rows("AVG", avg_counts);

    std::printf("%s\n", t.str().c_str());

    bench::finishArtifact(argc, argv, artifact, results, runner);
    std::printf(
        "Paper reference (section V-D): Altivec is ~1.2X over scalar; "
        "unaligned\ninstructions add ~1.2X over plain Altivec (~1.49X "
        "over scalar on average);\nriverbed-style content benefits "
        "least because few blocks are inter-coded,\nso MC matters "
        "less.\n");
    return 0;
}
