/**
 * @file
 * Table III reproduction: dynamic instruction count for 1000
 * executions of each kernel (thousands of instructions), per class,
 * for the scalar / Altivec / unaligned variants, on MC-realistic
 * random alignments.
 */

#include <cstdio>

#include "bench_util.hh"
#include "core/experiment.hh"
#include "core/report.hh"

using namespace uasim;
using core::KernelBench;
using h264::Variant;

int
main(int argc, char **argv)
{
    const int execs = bench::sizeFlag(argc, argv, "--execs", 1000, 16);
    std::printf("== Table III: dynamic instruction count for %d "
                "executions (thousands) ==\n\n",
                execs);

    core::TextTable t;
    t.header({"kernel", "variant", "Total", "Int", "Loads", "Stores",
              "Branch", "VLoad", "VStore", "VSimple", "VCmplx",
              "VPerm"});

    auto kilo = [&](std::uint64_t v) {
        return core::fmtCount((v + 500) / 1000);
    };

    for (const auto &spec : core::tableThreeSpecs()) {
        KernelBench bench(spec);
        for (int v = 0; v < h264::numVariants; ++v) {
            auto variant = static_cast<Variant>(v);
            auto mix = bench.countInstrs(variant, execs);
            t.row({spec.name() + " " +
                       std::string(h264::variantName(variant)),
                   std::string(h264::variantName(variant)),
                   kilo(mix.total()), kilo(mix.intOps()),
                   kilo(mix.scalarLoads()), kilo(mix.scalarStores()),
                   kilo(mix.branches()), kilo(mix.vecLoads()),
                   kilo(mix.vecStores()), kilo(mix.vecSimple()),
                   kilo(mix.vecComplex()), kilo(mix.vecPerm())});
        }
    }
    std::printf("%s\n", t.str().c_str());

    // The reduction summary the paper quotes in section V-A.
    std::printf("-- Instruction reduction, unaligned vs plain Altivec "
                "(all block sizes) --\n");
    struct Family {
        h264::KernelId id;
        const char *name;
        std::vector<int> sizes;
        double paper;
    };
    const Family families[] = {
        {h264::KernelId::LumaMc, "luma", {16, 8, 4}, 33.4},
        {h264::KernelId::ChromaMc, "chroma", {8, 4}, 22.6},
        {h264::KernelId::Idct, "idct", {8, 4}, 1.8},
        {h264::KernelId::Sad, "sad", {16, 8, 4}, 33.7},
    };
    for (const auto &f : families) {
        double sum = 0;
        std::uint64_t perm_a = 0, perm_u = 0;
        for (int size : f.sizes) {
            KernelBench bench({f.id, size, false});
            auto a = bench.countInstrs(Variant::Altivec, execs / 4);
            auto u = bench.countInstrs(Variant::Unaligned, execs / 4);
            sum += 100.0 * (1.0 - double(u.total()) / a.total());
            perm_a += a.vecPerm();
            perm_u += u.vecPerm();
        }
        double avg = sum / double(f.sizes.size());
        std::printf("  %-7s avg total reduction %5.1f%%  (paper: "
                    "%4.1f%%), perm reduction %5.1f%%\n",
                    f.name, avg, f.paper,
                    100.0 * (1.0 - double(perm_u) / double(perm_a)));
    }
    return 0;
}
