/**
 * @file
 * Table III reproduction: dynamic instruction count for 1000
 * executions of each kernel (thousands of instructions), per class,
 * for the scalar / Altivec / unaligned variants, on MC-realistic
 * random alignments.
 *
 * All mixes come from mix-only sweep cells (no timing simulation):
 * every kernel/variant trace of the main table and of the reduction
 * summary is recorded once, sharded over --threads workers.
 */

#include <cstdio>
#include <vector>

#include "bench_util.hh"
#include "core/experiment.hh"
#include "core/report.hh"
#include "core/sweep.hh"

using namespace uasim;
using h264::Variant;

int
main(int argc, char **argv)
{
    const int execs = bench::sizeFlag(argc, argv, "--execs", 1000, 16);
    std::printf("== Table III: dynamic instruction count for %d "
                "executions (thousands) ==\n\n",
                execs);

    // The reduction summary the paper quotes in section V-A.
    struct Family {
        h264::KernelId id;
        const char *name;
        std::vector<int> sizes;
        double paper;
    };
    const Family families[] = {
        {h264::KernelId::LumaMc, "luma", {16, 8, 4}, 33.4},
        {h264::KernelId::ChromaMc, "chroma", {8, 4}, 22.6},
        {h264::KernelId::Idct, "idct", {8, 4}, 1.8},
        {h264::KernelId::Sad, "sad", {16, 8, 4}, 33.7},
    };

    // One mix-only plan covers the main table (execs executions of
    // every Table III spec/variant) and the per-family reduction
    // summary (execs/4 executions of Altivec and Unaligned).
    const auto specs = core::tableThreeSpecs();
    core::SweepPlan plan;
    for (const auto &spec : specs) {
        for (int v = 0; v < h264::numVariants; ++v) {
            int t = plan.addTrace(core::kernelTraceJob(
                spec, static_cast<Variant>(v), execs));
            plan.addCell(t, core::SweepCell::mixOnly);
        }
    }
    std::vector<std::pair<int, int>> fam_cells;  // (altivec, unaligned)
    for (const auto &f : families) {
        for (int size : f.sizes) {
            core::KernelSpec spec{f.id, size, false};
            int a = plan.addTrace(core::kernelTraceJob(
                spec, Variant::Altivec, execs / 4));
            int u = plan.addTrace(core::kernelTraceJob(
                spec, Variant::Unaligned, execs / 4));
            fam_cells.emplace_back(int(plan.cells().size()), 0);
            plan.addCell(a, core::SweepCell::mixOnly);
            fam_cells.back().second = int(plan.cells().size());
            plan.addCell(u, core::SweepCell::mixOnly);
        }
    }

    auto runner = bench::makeSweepRunner(argc, argv);
    auto results = runner.run(plan);

    auto artifact =
        bench::makeResult("table3_instr_count", argc, argv);
    artifact.addParam("execs", json::Value(execs));

    core::TextTable t;
    t.header({"kernel", "variant", "Total", "Int", "Loads", "Stores",
              "Branch", "VLoad", "VStore", "VSimple", "VCmplx",
              "VPerm"});

    auto kilo = [&](std::uint64_t v) {
        return core::fmtCount((v + 500) / 1000);
    };

    for (int s = 0; s < int(specs.size()); ++s) {
        const auto &spec = specs[s];
        for (int v = 0; v < h264::numVariants; ++v) {
            auto variant = static_cast<Variant>(v);
            const auto &mix =
                results[s * h264::numVariants + v].mix;
            t.row({spec.name() + " " +
                       std::string(h264::variantName(variant)),
                   std::string(h264::variantName(variant)),
                   kilo(mix.total()), kilo(mix.intOps()),
                   kilo(mix.scalarLoads()), kilo(mix.scalarStores()),
                   kilo(mix.branches()), kilo(mix.vecLoads()),
                   kilo(mix.vecStores()), kilo(mix.vecSimple()),
                   kilo(mix.vecComplex()), kilo(mix.vecPerm())});
        }
    }
    std::printf("%s\n", t.str().c_str());

    std::printf("-- Instruction reduction, unaligned vs plain Altivec "
                "(all block sizes) --\n");
    int fam_idx = 0;
    for (const auto &f : families) {
        double sum = 0;
        std::uint64_t perm_a = 0, perm_u = 0;
        for (std::size_t i = 0; i < f.sizes.size(); ++i) {
            const auto &a = results[fam_cells[fam_idx].first].mix;
            const auto &u = results[fam_cells[fam_idx].second].mix;
            ++fam_idx;
            sum += 100.0 * (1.0 - double(u.total()) / a.total());
            perm_a += a.vecPerm();
            perm_u += u.vecPerm();
        }
        double avg = sum / double(f.sizes.size());
        const double perm_red =
            100.0 * (1.0 - double(perm_u) / double(perm_a));
        std::printf("  %-7s avg total reduction %5.1f%%  (paper: "
                    "%4.1f%%), perm reduction %5.1f%%\n",
                    f.name, avg, f.paper, perm_red);
        artifact.addMetric(std::string(f.name) +
                               "/avg_total_reduction_pct",
                           avg);
        artifact.addMetric(std::string(f.name) +
                               "/perm_reduction_pct",
                           perm_red);
    }

    bench::finishArtifact(argc, argv, artifact, results, runner);
    return 0;
}
