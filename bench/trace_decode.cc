/**
 * @file
 * Trace-ingest throughput microbench: how fast can the UATRACE2 block
 * decoder turn encoded payload bytes back into InstrRecords?
 *
 * Two corpora, because the answer depends on the payload's varint
 * length entropy and an honest artifact must show both sides of the
 * crossover:
 *
 *   dense  records cycled from real kernel traces. ~92% of varints
 *          are one byte, so the scalar loop's length branches are
 *          nearly always predicted and it is hard to beat.
 *   wide   pseudo-random records with delta magnitudes up to 2^32,
 *          i.e. multi-byte varints everywhere. The scalar loop eats
 *          a mispredict per length change; the SIMD kernel's mask
 *          walk is branch-light and holds its rate.
 *
 * Three legs per corpus (mmap on the dense one only):
 *
 *   scalar       the portable reference loop, forced via
 *                simd::forceTier(Tier::Scalar)
 *   <tier>       the best SIMD tier this host dispatches to
 *                (trace/simd_decode.hh; equals scalar when the host
 *                has none or UASIM_DECODE pins it)
 *   <tier>+mmap  the same kernel decoding straight out of an mmap'd
 *                TraceReader via a fresh TraceCursor per pass - the
 *                store-hit replay path end to end (open/checksum cost
 *                excluded; that is paid once per trace, not per pass)
 *
 * Every leg's decoded stream is cross-checked against the scalar
 * reference (record count and a value digest) before any number is
 * reported, so a fast-but-wrong kernel fails the bench instead of
 * winning it. Unlike the figure/table benches this artifact reports
 * throughput, not simulated counters - it has no committed baseline
 * and is deliberately outside the results_baseline gate; the nightly
 * perf-trajectory job collects BENCH_trace_decode.json instead.
 */

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <filesystem>
#include <random>
#include <string>
#include <vector>

#include "bench_util.hh"
#include "core/experiment.hh"
#include "trace/simd_decode.hh"
#include "trace/trace_buffer.hh"
#include "trace/trace_io.hh"

using namespace uasim;
using core::KernelBench;
using core::KernelSpec;
using h264::KernelId;
using h264::Variant;
using trace::InstrRecord;
namespace simd = trace::simd;
namespace wire = trace::wire;

namespace {

/// Count and value digest of one decoded stream; any divergence
/// between legs is a correctness bug, not a performance result.
struct Tally {
    std::uint64_t records = 0;
    std::uint64_t digest = 0;

    void
    add(const InstrRecord &rec)
    {
        ++records;
        std::uint64_t h = rec.id;
        h = h * 0x9e3779b97f4a7c15ull + rec.pc;
        h = h * 0x9e3779b97f4a7c15ull + rec.addr;
        h = h * 0x9e3779b97f4a7c15ull + rec.deps[0];
        h = h * 0x9e3779b97f4a7c15ull + rec.deps[1];
        h = h * 0x9e3779b97f4a7c15ull + rec.deps[2];
        h = h * 0x9e3779b97f4a7c15ull +
            (std::uint64_t(rec.size) << 16 |
             std::uint64_t(static_cast<std::uint8_t>(rec.cls)) << 8 |
             std::uint64_t(rec.taken));
        digest ^= h;
    }

    bool
    operator==(const Tally &o) const
    {
        return records == o.records && digest == o.digest;
    }
};

/**
 * A payload with real kernel statistics: record a few paper kernels
 * once, then cycle their records through one RecordEncoder until
 * @p records are encoded. The delta/varint length distribution is
 * that of genuine traces, not of synthetic noise.
 */
std::string
buildPayload(std::size_t records)
{
    trace::TraceBuffer pool;
    const struct {
        KernelSpec spec;
        Variant variant;
    } jobs[] = {
        {{KernelId::Sad, 16, false}, Variant::Unaligned},
        {{KernelId::LumaMc, 8, false}, Variant::Altivec},
        {{KernelId::Idct, 4, false}, Variant::Scalar},
    };
    for (const auto &job : jobs) {
        KernelBench bench(job.spec);
        bench.recordTrace(job.variant, 2, pool);
    }

    const auto &src = pool.records();
    wire::RecordEncoder enc;
    std::string payload;
    payload.reserve(records * 12);
    for (std::size_t i = 0; i < records; ++i)
        enc.encode(src[i % src.size()], payload);
    return payload;
}

/**
 * The other end of the entropy spectrum: pseudo-random records whose
 * pc/addr deltas span up to @p maxBits bits, so multi-byte varints
 * dominate and the scalar loop's length branches stop predicting.
 * Deterministic seed - every run times the same payload.
 */
std::string
buildWidePayload(std::size_t records, unsigned maxBits)
{
    std::mt19937_64 rng(42);
    const auto delta = [&]() -> std::uint64_t {
        const unsigned bits = unsigned(rng() % (maxBits + 1));
        return (rng() & ((std::uint64_t(1) << bits) - 1)) -
               (std::uint64_t(1) << (bits ? bits - 1 : 0));
    };
    wire::RecordEncoder enc;
    std::string payload;
    payload.reserve(records * 12);
    InstrRecord rec{};
    std::uint64_t pc = 0x400000, addr = 0x7f0000000000;
    for (std::size_t i = 0; i < records; ++i) {
        rec.id = i + 1;
        pc += delta();
        rec.pc = pc;
        rec.cls = static_cast<trace::InstrClass>(rng() % 13);
        rec.taken =
            rec.cls == trace::InstrClass::Branch && (rng() & 1);
        if (trace::isMemClass(rec.cls)) {
            addr += delta();
            rec.addr = addr;
            rec.size = std::uint8_t(rng());
        } else {
            rec.addr = 0;
            rec.size = 0;
        }
        for (auto &dep : rec.deps)
            dep = (rng() & 3) ? 0
                              : rec.id - 1 -
                                    rng() % std::min<std::uint64_t>(
                                                rec.id, 1000);
        enc.encode(rec, payload);
    }
    return payload;
}

/// Decode the whole payload through RecordDecoder::decodeBlock (the
/// reader's integration surface) with the current dispatch tier.
/// @p tally is optional so the timed loops measure pure decode; the
/// untimed verification passes digest every record.
std::uint64_t
decodeBuffer(const std::string &payload, Tally *tally = nullptr)
{
    wire::RecordDecoder dec;
    static InstrRecord block[4096];
    const auto *p =
        reinterpret_cast<const std::uint8_t *>(payload.data());
    const auto *end = p + payload.size();
    std::uint64_t records = 0;
    while (p != end) {
        const std::size_t got = dec.decodeBlock(p, end, block, 4096);
        if (got == 0)
            break;
        records += got;
        if (tally)
            for (std::size_t i = 0; i < got; ++i)
                tally->add(block[i]);
    }
    return records;
}

/// One fresh decode pass over an opened reader (the sharded store-hit
/// replay path: cursor per pass over the shared mapping).
std::uint64_t
decodeMapped(const trace::TraceReader &reader, Tally *tally = nullptr)
{
    trace::TraceCursor cur = reader.cursor();
    static InstrRecord block[4096];
    while (const std::size_t got = cur.nextBlock(block, 4096))
        if (tally)
            for (std::size_t i = 0; i < got; ++i)
                tally->add(block[i]);
    return cur.read();
}

/// Digest cross-check: a fast-but-wrong kernel must fail the bench,
/// never win it.
void
verifyLeg(const char *leg, const Tally &want, const Tally &got)
{
    if (got == want)
        return;
    std::fprintf(stderr,
                 "trace_decode: %s decoded %llu records "
                 "(digest %016llx), scalar reference says %llu "
                 "(%016llx) - decoder divergence\n",
                 leg, static_cast<unsigned long long>(got.records),
                 static_cast<unsigned long long>(got.digest),
                 static_cast<unsigned long long>(want.records),
                 static_cast<unsigned long long>(want.digest));
    std::exit(1);
}

/// Best-of-@p repeat wall time of @p fn, which must decode @p records
/// records every repetition.
template <typename Fn>
double
bestSeconds(int repeat, std::uint64_t records, Fn &&fn)
{
    double best = 1e100;
    for (int r = 0; r < repeat; ++r) {
        const auto t0 = std::chrono::steady_clock::now();
        const std::uint64_t got = fn();
        const std::chrono::duration<double> dt =
            std::chrono::steady_clock::now() - t0;
        if (got != records) {
            std::fprintf(stderr,
                         "trace_decode: short decode (%llu of %llu "
                         "records)\n",
                         static_cast<unsigned long long>(got),
                         static_cast<unsigned long long>(records));
            std::exit(1);
        }
        best = std::min(best, dt.count());
    }
    return best;
}

void
printLeg(const char *leg, std::size_t payloadBytes,
         std::uint64_t records, double seconds, double scalarSeconds)
{
    std::printf("  %-12s %7.3f GB/s  %8.1f Mrec/s  %5.2fx scalar\n",
                leg, double(payloadBytes) / seconds * 1e-9,
                double(records) / seconds * 1e-6,
                scalarSeconds / seconds);
}

/// Timed scalar + best-tier legs over one in-memory corpus; returns
/// {scalarSeconds, simdSeconds} and prints both.
struct CorpusTimes {
    double scalarSec;
    double simdSec;
    Tally want;
};

CorpusTimes
runCorpus(const char *name, const std::string &payload, int repeat)
{
    CorpusTimes t;
    simd::forceTier(simd::Tier::Scalar);
    decodeBuffer(payload, &t.want);
    std::printf("%s corpus: %.1f MB payload (%.2f B/record)\n", name,
                double(payload.size()) * 1e-6,
                double(payload.size()) / double(t.want.records));
    t.scalarSec = bestSeconds(repeat, t.want.records,
                              [&] { return decodeBuffer(payload); });
    printLeg("scalar", payload.size(), t.want.records, t.scalarSec,
             t.scalarSec);

    simd::clearForcedTier();
    Tally simdTally;
    decodeBuffer(payload, &simdTally);
    verifyLeg(simd::tierName(simd::activeTier()), t.want, simdTally);
    t.simdSec = bestSeconds(repeat, t.want.records,
                            [&] { return decodeBuffer(payload); });
    printLeg(simd::tierName(simd::activeTier()), payload.size(),
             t.want.records, t.simdSec, t.scalarSec);
    return t;
}

} // namespace

int
main(int argc, char **argv)
{
    const std::size_t records = std::size_t(
        bench::sizeFlag(argc, argv, "--records", 4'000'000, 200'000));
    const int repeat =
        bench::intFlag(argc, argv, "--repeat",
                       bench::quickFlag(argc, argv) ? 2 : 5);

    const std::string payload = buildPayload(records);
    const simd::Tier simdTier = simd::activeTier();

    std::printf("== trace_decode: UATRACE2 block-decode throughput ==\n");
    std::printf("%zu records per corpus, best of %d, dispatch tier "
                "%s\n\n",
                records, repeat, simd::tierName(simdTier));

    const CorpusTimes dense = runCorpus("dense", payload, repeat);
    const double scalarSec = dense.scalarSec;
    const double simdSec = dense.simdSec;
    const Tally &want = dense.want;

    // mmap + best tier: write the payload out as a real trace file and
    // decode it through TraceReader cursors.
    simd::clearForcedTier();
    const std::string path =
        (std::filesystem::temp_directory_path() /
         ("uasim_trace_decode_" +
          std::to_string(std::random_device{}()) + ".uatrace"))
            .string();
    double mmapSec = 0;
    bool mapped = false;
    {
        {
            wire::RecordDecoder dec;
            InstrRecord rec;
            const auto *p =
                reinterpret_cast<const std::uint8_t *>(payload.data());
            const auto *end = p + payload.size();
            trace::FileSink sink(path, "trace_decode-bench");
            while (p != end) {
                dec.decode(p, end, rec);
                sink.append(rec);
            }
            sink.close();
        }
        trace::TraceReader reader(path, "trace_decode-bench");
        mapped = reader.mapped();
        Tally mmapTally;
        decodeMapped(reader, &mmapTally);
        verifyLeg("mmap", want, mmapTally);
        mmapSec = bestSeconds(repeat, want.records,
                              [&] { return decodeMapped(reader); });
        char leg[32];
        std::snprintf(leg, sizeof(leg), "%s+%s",
                      simd::tierName(simdTier),
                      mapped ? "mmap" : "fread");
        printLeg(leg, payload.size(), want.records, mmapSec, scalarSec);
    }
    std::filesystem::remove(path);

    const std::string widePayload = buildWidePayload(records, 32);
    std::printf("\n");
    const CorpusTimes wide = runCorpus("wide", widePayload, repeat);

    auto artifact = bench::makeResult("trace_decode", argc, argv);
    artifact.addParam("records", json::Value(std::uint64_t(records)));
    artifact.addParam("repeat", json::Value(repeat));
    artifact.addParam("payloadBytes",
                      json::Value(std::uint64_t(payload.size())));
    artifact.addParam("simdTier",
                      json::Value(std::string(simd::tierName(simdTier))));
    artifact.addParam("mmap", json::Value(mapped));
    const double gb = double(payload.size()) * 1e-9;
    const double wgb = double(widePayload.size()) * 1e-9;
    artifact.addMetric("dense_scalar_gbps", gb / scalarSec);
    artifact.addMetric("dense_simd_gbps", gb / simdSec);
    artifact.addMetric("dense_simd_speedup", scalarSec / simdSec);
    artifact.addMetric("mmap_simd_gbps", gb / mmapSec);
    artifact.addMetric("mmap_simd_speedup", scalarSec / mmapSec);
    artifact.addMetric("wide_scalar_gbps", wgb / wide.scalarSec);
    artifact.addMetric("wide_simd_gbps", wgb / wide.simdSec);
    artifact.addMetric("wide_simd_speedup",
                       wide.scalarSec / wide.simdSec);
    bench::writeResultArtifact(argc, argv, artifact);

    std::printf("\nLegs decode identical streams (record count + value "
                "digest cross-checked\nagainst the scalar reference "
                "every repetition).\n");
    return 0;
}
