/**
 * @file
 * Fig 8 reproduction: kernel speedups with unaligned load/store
 * support. Every kernel/block-size is simulated in the three variants
 * on the three Table II cores; bars are normalized to the 2-way
 * scalar version, exactly like the paper's figure. Unaligned accesses
 * run at aligned latency (the paper's upper-bound experiment; Fig 9
 * covers the latency sweep).
 *
 * Execution goes through the sweep engine: each kernel/variant trace
 * is recorded once and replayed into all three cores, sharded over
 * --threads workers, with cell-ordered (thread-count independent)
 * results. The one state-sensitive trace (scalar IDCT; see
 * KernelSpec::traceStateInvariant) is recorded per core with the
 * grid-order call history warmed up, keeping the table byte-identical
 * to the original shared-bench per-cell loop.
 */

#include <array>
#include <cstdio>
#include <vector>

#include "bench_util.hh"
#include "core/experiment.hh"
#include "core/report.hh"
#include "core/sweep.hh"

using namespace uasim;
using h264::Variant;

int
main(int argc, char **argv)
{
    const int execs = bench::sizeFlag(argc, argv, "--execs", 300, 8);
    std::printf("== Fig 8: speed-up in kernels with support for "
                "unaligned load and stores ==\n(%d executions per "
                "point; normalized to the 2-way scalar version)\n\n",
                execs);

    const char *group_break[] = {"chroma4x4", "idct4x4_matrix"};

    const auto grid = core::paperKernelGrid();

    core::SweepPlan plan;
    for (int c = 0; c < 3; ++c) {
        auto cfg = timing::CoreConfig::preset(c);
        plan.addConfig(cfg.name, cfg);
    }
    // cellIdx[s][v][c]: result slot of kernel s, variant v, core c.
    // State-invariant traces are recorded once and replayed into all
    // three cores; the scalar IDCT gets one exact-history trace per
    // core (its grid position is call 3*c + v of the original
    // shared-bench loop).
    std::vector<std::array<std::array<int, 3>, h264::numVariants>>
        cellIdx(grid.size());
    for (int s = 0; s < int(grid.size()); ++s) {
        const auto &spec = grid[s];
        for (int v = 0; v < h264::numVariants; ++v) {
            auto variant = static_cast<Variant>(v);
            if (spec.traceStateInvariant(variant)) {
                int t = plan.addTrace(
                    core::kernelTraceJob(spec, variant, execs));
                for (int c = 0; c < 3; ++c) {
                    cellIdx[s][v][c] = int(plan.cells().size());
                    plan.addCell(t, c);
                }
            } else {
                for (int c = 0; c < 3; ++c) {
                    int t = plan.addTrace(core::kernelTraceJob(
                        spec, variant, execs, 12345, 3 * c + v));
                    cellIdx[s][v][c] = int(plan.cells().size());
                    plan.addCell(t, c);
                }
            }
        }
    }

    auto runner = bench::makeSweepRunner(argc, argv);
    auto results = runner.run(plan);

    auto artifact = bench::makeResult("fig8_kernel_speedup", argc, argv);
    artifact.addParam("execs", json::Value(execs));

    core::TextTable t;
    t.header({"kernel", "core", "scalar", "altivec", "unaligned",
              "unal/altivec"});

    for (int s = 0; s < int(grid.size()); ++s) {
        const auto &spec = grid[s];
        double base = 0;
        for (int c = 0; c < 3; ++c) {
            auto cfg = timing::CoreConfig::preset(c);
            double cyc[h264::numVariants];
            for (int v = 0; v < h264::numVariants; ++v)
                cyc[v] = double(results[cellIdx[s][v][c]].sim.cycles);
            if (c == 0)
                base = cyc[0];
            t.row({spec.name(), cfg.name, core::fmt(base / cyc[0]),
                   core::fmt(base / cyc[1]), core::fmt(base / cyc[2]),
                   core::fmt(cyc[1] / cyc[2])});
            const std::string m = spec.name() + "/" + cfg.name;
            artifact.addMetric(m + "/scalar", base / cyc[0]);
            artifact.addMetric(m + "/altivec", base / cyc[1]);
            artifact.addMetric(m + "/unaligned", base / cyc[2]);
            artifact.addMetric(m + "/unal_over_altivec",
                               cyc[1] / cyc[2]);
        }
        for (const char *b : group_break) {
            if (spec.name() == b)
                t.row({"", "", "", "", "", ""});
        }
    }
    std::printf("%s\n", t.str().c_str());

    bench::finishArtifact(argc, argv, artifact, results, runner);

    std::printf(
        "Paper reference (section V-B): luma unaligned gains 1.9X/2.6X"
        "/2.1X over\nplain Altivec for 16x16/8x8/4x4; scalar beats "
        "plain Altivec for luma 4x4;\nchroma ~1.1-1.25X; IDCT only "
        "1.06-1.09X (inputs already aligned); SAD ~1.16X\naverage with "
        "the largest gains on the 2-way.\n");
    return 0;
}
