/**
 * @file
 * Ablation beyond the paper: plug each Table I realignment strategy
 * into the same end-to-end SAD 16x16 kernel and simulate it on all
 * three cores. This turns the paper's survey table into a kernel-level
 * what-if: how much of the lvxu win does a 3-instruction Cell-style
 * sequence already capture? How much does microcoded movdqu give up?
 *
 * Each strategy's kernel trace is recorded once and replayed into all
 * three cores by the sweep engine; the instruction-count pass is a
 * mix-only cell on a separate short trace.
 */

#include <cstdio>

#include "bench_util.hh"
#include "core/report.hh"
#include "core/sweep.hh"
#include "trace/addrmap.hh"
#include "trace/emitter.hh"
#include "video/frame.hh"
#include "video/rng.hh"
#include "vmx/scalarops.hh"
#include "vmx/strategies.hh"

using namespace uasim;
using vmx::CPtr;
using vmx::RealignStrategy;
using vmx::SInt;
using vmx::Vec;

namespace {

/// SAD 16x16 with the unaligned loads done by @p strat.
int
sadWithStrategy(vmx::ScalarOps &so, vmx::VecOps &vo,
                RealignStrategy strat, const std::uint8_t *cur,
                int cur_stride, const std::uint8_t *ref, int ref_stride)
{
    CPtr c = so.lip(cur);
    CPtr r = so.lip(ref);
    Vec vzero = vo.zero();
    Vec acc = vzero;
    for (int y = 0; y < 16; ++y) {
        Vec a = vmx::strategyLoadU(vo, strat, c);
        Vec b = vmx::strategyLoadU(vo, strat, r);
        Vec mx = vo.maxu8(a, b);
        Vec mn = vo.minu8(a, b);
        acc = vo.sum4su8(vo.subu8(mx, mn), acc);
        c = so.paddi(c, cur_stride);
        r = so.paddi(r, ref_stride);
        so.loopBranch(y + 1 < 16);
    }
    Vec total = vo.sums32(acc, vzero);
    alignas(16) static thread_local std::uint8_t spill[16];
    vmx::Ptr sp = so.lip(spill);
    vo.stvx(total, sp, 0);
    return int(so.loadS32(CPtr{sp}, 12).v);
}

/// Run @p execs MC-random SAD executions under @p strat.
void
runSadExecs(vmx::ScalarOps &so, vmx::VecOps &vo, RealignStrategy strat,
            const video::Plane &cur, const video::Plane &ref, int execs)
{
    video::Rng rng(11);
    for (int i = 0; i < execs; ++i) {
        int bx = int(rng.range(24, 200));
        int by = int(rng.range(24, 200));
        int dx = int(rng.range(-20, 20));
        int dy = int(rng.range(-20, 20));
        sadWithStrategy(so, vo, strat, cur.pixel(bx, by), cur.stride(),
                        ref.pixel(bx + dx, by + dy), ref.stride());
    }
}

} // namespace

int
main(int argc, char **argv)
{
    const int execs = bench::sizeFlag(argc, argv, "--execs", 300, 8);
    std::printf("== Ablation: Table I strategies inside the SAD 16x16 "
                "kernel ==\n(%d executions per point; cycles per "
                "execution, +1/+2 network for\nhardware-unaligned "
                "strategies)\n\n",
                execs);

    video::Plane cur(256, 256), ref(256, 256);
    video::Rng init(7);
    for (int y = 0; y < 256; ++y) {
        for (int x = 0; x < 256; ++x) {
            cur.at(x, y) = std::uint8_t(init.below(256));
            ref.at(x, y) = std::uint8_t(init.below(256));
        }
    }

    const int countExecs = 32;
    const int numStrats = int(RealignStrategy::NumStrategies);

    core::SweepPlan plan;
    for (int c = 0; c < 3; ++c) {
        auto cfg = timing::CoreConfig::preset(c);
        cfg.lat.unalignedLoadExtra = 1;
        cfg.lat.unalignedStoreExtra = 2;
        plan.addConfig(cfg.name, cfg);
    }
    // Per strategy: one short un-normalized trace for the instruction
    // count (mix-only), and one normalized trace replayed into all
    // three cores. Cell layout: strategy s occupies cells [s*4, s*4+4).
    for (int si = 0; si < numStrats; ++si) {
        auto strat = static_cast<RealignStrategy>(si);
        std::string name{vmx::strategyName(strat)};
        // Execution counts are part of the keys: store entries
        // outlive the process, so a --execs change must miss. The
        // count trace is deliberately un-normalized (only its mix is
        // consumed), so its raw host addresses must not be persisted:
        // not cacheable.
        int mixT = plan.addTrace(
            {"sad16/" + name + "/count/" + std::to_string(countExecs),
             [strat, &cur, &ref](trace::TraceSink &sink) {
                 trace::Emitter em(sink);
                 vmx::ScalarOps so(em);
                 vmx::VecOps vo(em);
                 runSadExecs(so, vo, strat, cur, ref, countExecs);
             },
             /*cacheable=*/false});
        plan.addCell(mixT, core::SweepCell::mixOnly);
        int simT = plan.addTrace(
            {"sad16/" + name + "/sim/" + std::to_string(execs),
             [strat, &cur, &ref, execs](trace::TraceSink &sink) {
                 trace::AddrNormalizer norm(sink);
                 norm.addRegion(cur.paddedBase(), cur.paddedSize(),
                                0x10000000);
                 norm.addRegion(ref.paddedBase(), ref.paddedSize(),
                                0x12000000);
                 trace::Emitter em(norm);
                 vmx::ScalarOps so(em);
                 vmx::VecOps vo(em);
                 runSadExecs(so, vo, strat, cur, ref, execs);
             }});
        for (int c = 0; c < 3; ++c)
            plan.addCell(simT, c);
    }

    auto runner = bench::makeSweepRunner(argc, argv);
    auto results = runner.run(plan);

    auto artifact =
        bench::makeResult("ablation_strategies", argc, argv);
    artifact.addParam("execs", json::Value(execs));
    artifact.addParam("countExecs", json::Value(countExecs));

    core::TextTable t;
    std::vector<std::string> head{"strategy", "instrs/exec"};
    for (int c = 0; c < 3; ++c)
        head.push_back(std::string("cyc/exec ") +
                       timing::CoreConfig::presetNames[c]);
    t.header(head);

    for (int si = 0; si < numStrats; ++si) {
        auto strat = static_cast<RealignStrategy>(si);
        const std::string name{vmx::strategyName(strat)};
        std::vector<std::string> cells{name};
        const int rowBase = si * 4;
        cells.push_back(std::to_string(
            results[rowBase].mix.total() / countExecs));
        artifact.addMetric(
            name + "/instrs_per_exec",
            double(results[rowBase].mix.total() / countExecs));
        for (int c = 0; c < 3; ++c) {
            const auto &res = results[rowBase + 1 + c].sim;
            cells.push_back(
                core::fmt(double(res.cycles) / execs, 0));
            artifact.addMetric(
                name + "/cyc_per_exec/" +
                    timing::CoreConfig::presetNames[c],
                double(res.cycles) / execs);
        }
        t.row(cells);
    }
    std::printf("%s\n", t.str().c_str());

    bench::finishArtifact(argc, argv, artifact, results, runner);
    std::printf(
        "Reading: the 3-instruction Cell sequence recovers part of "
        "the lvxu win;\nthe 4-instruction Altivec idiom pays both "
        "extra loads and the permute-unit\nserialization; the "
        "microcoded movdqu stays load-port bound.\n\nCaveat: the "
        "'ldndw pair' row is optimistic - the model tracks a single\n"
        "producer per vector value, so only one of the two halves "
        "sits on the\nconsumer's critical path, and the TM3270-style "
        "port restriction for\nunaligned halves is not charged.\n");
    return 0;
}
