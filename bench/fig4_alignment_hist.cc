/**
 * @file
 * Fig 4 reproduction: distribution of (address % 16) for the luma and
 * chroma interpolation kernels' block load and store pointers, over
 * the 12 input profiles (4 contents x 3 resolutions).
 *
 * Each sequence's address walk is a mix-only sweep job (no timing
 * cells), so the 12 collections shard over --threads workers while
 * the per-sequence result slots keep the output order fixed.
 */

#include <cstdio>

#include "bench_util.hh"
#include "core/report.hh"
#include "core/sweep.hh"
#include "video/motion.hh"

using namespace uasim;
using video::AlignmentHistogram;

namespace {

void
printPanel(const char *title, const char *metricKey,
           const std::vector<std::pair<std::string,
                                       AlignmentHistogram>> &rows,
           core::BenchResult &artifact)
{
    std::printf("-- %s: %% of block addresses per (addr %% 16) --\n",
                title);
    core::TextTable t;
    std::vector<std::string> head{"sequence"};
    for (int o = 0; o < 16; ++o)
        head.push_back(std::to_string(o));
    t.header(head);
    for (const auto &[name, hist] : rows) {
        std::vector<std::string> cells{name};
        for (int o = 0; o < 16; ++o) {
            cells.push_back(core::fmt(hist.percent(o), 1));
            artifact.addMetric(std::string(metricKey) + "/" + name +
                                   "/" + std::to_string(o),
                               hist.percent(o));
        }
        t.row(cells);
    }
    std::printf("%s\n", t.str().c_str());
}

} // namespace

int
main(int argc, char **argv)
{
    const int frames = bench::sizeFlag(argc, argv, "--frames", 8, 1);
    std::printf("== Fig 4: alignment offsets in H.264/AVC luma and "
                "chroma interpolation ==\n(%d frames of MC block "
                "addresses per sequence)\n\n",
                frames);

    const auto seqs = video::allSequenceParams();
    std::vector<video::McAlignmentStats> stats(seqs.size());

    core::SweepPlan plan;
    for (int i = 0; i < int(seqs.size()); ++i) {
        const auto &params = seqs[i];
        // Not cacheable: the job's output is the side effect of
        // filling stats[i], not its (empty) record stream, so a
        // store hit would skip the work entirely.
        int t = plan.addTrace(
            {params.label(), [&stats, &params, frames, i](
                                 trace::TraceSink &) {
                 stats[i] = video::collectMcAlignment(params, frames);
             },
             /*cacheable=*/false});
        plan.addCell(t, core::SweepCell::mixOnly);
    }
    auto runner = bench::makeSweepRunner(argc, argv);
    auto results = runner.run(plan);

    auto artifact =
        bench::makeResult("fig4_alignment_hist", argc, argv);
    artifact.addParam("frames", json::Value(frames));

    std::vector<std::pair<std::string, AlignmentHistogram>> luma_ld,
        chroma_ld, luma_st, chroma_st;
    for (int i = 0; i < int(seqs.size()); ++i) {
        const std::string label = seqs[i].label();
        luma_ld.emplace_back(label, stats[i].lumaLoad);
        chroma_ld.emplace_back(label, stats[i].chromaLoad);
        luma_st.emplace_back(label, stats[i].lumaStore);
        chroma_st.emplace_back(label, stats[i].chromaStore);
    }

    printPanel("Fig 4(a) luma load pointers", "luma_load", luma_ld,
               artifact);
    printPanel("Fig 4(b) chroma load pointers", "chroma_load",
               chroma_ld, artifact);
    printPanel("Fig 4(c) luma store pointers", "luma_store", luma_st,
               artifact);
    printPanel("Fig 4(d) chroma store pointers", "chroma_store",
               chroma_st, artifact);

    bench::finishArtifact(argc, argv, artifact, results, runner);

    std::printf(
        "Paper reference: load offsets spread over the full 0..15 "
        "range and cannot\nbe predicted at compile time; store offsets "
        "depend only on the block size\n(luma stores only at multiples "
        "of 4, dominated by 0; chroma stores only at\neven offsets).\n");
    return 0;
}
