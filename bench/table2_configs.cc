/**
 * @file
 * Table II reproduction: the three simulated processor configurations,
 * registered as a SweepPlan config axis (the same declarative registry
 * the simulating benches sweep over) and printed from the plan.
 */

#include <cstdio>

#include "bench_util.hh"
#include "core/report.hh"
#include "core/sweep.hh"
#include "timing/config.hh"

using namespace uasim;

int
main(int argc, char **argv)
{
    std::printf("== Table II: processor configurations used in the "
                "simulation analysis ==\n\n");
    core::TextTable t;
    t.header({"parameter", "2-way", "4-way", "8-way"});

    core::SweepPlan plan;
    plan.addConfig("2-way", timing::CoreConfig::twoWayInOrder());
    plan.addConfig("4-way", timing::CoreConfig::fourWayOoO());
    plan.addConfig("8-way", timing::CoreConfig::eightWayOoO());
    const auto &c = plan.configs();

    auto artifact = bench::makeResult("table2_configs", argc, argv);

    auto row3 = [&](const char *name, auto get) {
        t.row({name, std::to_string(get(c[0].cfg)),
               std::to_string(get(c[1].cfg)),
               std::to_string(get(c[2].cfg))});
        for (int i = 0; i < 3; ++i)
            artifact.addMetric(std::string(name) + "/" + c[i].label,
                               double(get(c[i].cfg)));
    };

    t.row({"issue policy", "in-order", "out-of-order", "out-of-order"});
    row3("fetch-rename-dispatch", [](auto &x) { return x.fetchWidth; });
    row3("retire", [](auto &x) { return x.retireWidth; });
    row3("inflight", [](auto &x) { return x.inflight; });
    row3("FX units", [](auto &x) { return x.units.fx; });
    row3("FP units", [](auto &x) { return x.units.fp; });
    row3("LS units", [](auto &x) { return x.units.ls; });
    row3("BR units", [](auto &x) { return x.units.br; });
    row3("VI units", [](auto &x) { return x.units.vi; });
    row3("VPERM units", [](auto &x) { return x.units.vperm; });
    row3("VCMPLX units", [](auto &x) { return x.units.vcmplx; });
    row3("phys regs (per file)", [](auto &x) { return x.gprPhys; });
    row3("BR issue queue", [](auto &x) { return x.branchQ; });
    row3("issue queue", [](auto &x) { return x.issueQ; });
    row3("ibuffer", [](auto &x) { return x.ibuffer; });
    row3("D$ read ports", [](auto &x) { return x.dReadPorts; });
    row3("D$ write ports", [](auto &x) { return x.dWritePorts; });
    row3("max outstanding misses", [](auto &x) { return x.missMax; });

    const auto &m = c[0].cfg.mem;
    t.row({"L1-D", std::to_string(m.l1d.size / 1024) + "KB/" +
                       std::to_string(m.l1d.assoc) + "way/" +
                       std::to_string(m.l1d.lineSize) + "B",
           "=", "="});
    t.row({"L1-I", std::to_string(m.l1i.size / 1024) + "KB/" +
                       std::to_string(m.l1i.assoc) + "way/" +
                       std::to_string(m.l1i.lineSize) + "B",
           "=", "="});
    t.row({"L2 (I+D)", std::to_string(m.l2.size / 1024) + "KB/" +
                           std::to_string(m.l2.assoc) + "way, " +
                           std::to_string(m.l2Latency) + " cyc",
           "=", "="});
    t.row({"main memory", std::to_string(m.memLatency) + " cyc", "=",
           "="});

    // The non-numeric rows travel as typed parameters.
    artifact.addParam("issue_policy_2way", json::Value("in-order"));
    artifact.addParam("issue_policy_4way", json::Value("out-of-order"));
    artifact.addParam("issue_policy_8way", json::Value("out-of-order"));
    artifact.addParam("l1d_bytes", json::Value(m.l1d.size));
    artifact.addParam("l1i_bytes", json::Value(m.l1i.size));
    artifact.addParam("l2_bytes", json::Value(m.l2.size));
    artifact.addParam("l2_latency_cyc", json::Value(m.l2Latency));
    artifact.addParam("mem_latency_cyc", json::Value(m.memLatency));

    std::printf("%s\n", t.str().c_str());

    bench::writeResultArtifact(argc, argv, artifact);
    return 0;
}
