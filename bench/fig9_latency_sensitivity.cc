/**
 * @file
 * Fig 9 reproduction: impact of the realignment-network latency. The
 * unaligned variant is simulated on the 4-way core with 0/+1/+2/+4/+6
 * extra cycles on dynamically unaligned lvxu/stvxu, and reported as
 * speedup over the plain Altivec version (whose cycles are latency-
 * independent).
 *
 * This is the sweep engine's best case: per kernel, the unaligned
 * trace is recorded once and replayed into all five latency
 * configurations (the trace is configuration-independent), instead of
 * re-emulating it five times.
 *
 * --membw-sweep switches the swept axis from realignment latency to
 * the memory-bus throttle: both variants replay at
 * memBWBytesPerCycle in {0 (unthrottled), 8, 16, 32}, and each point
 * reports the unaligned-over-Altivec speedup at that bandwidth. The
 * unaligned variant issues more (and wider-miss) memory traffic, so
 * a tighter bus squeezes its advantage - the axis PR 8's throttle
 * knob exists for. A separate experiment, so a separate artifact:
 * BENCH_fig9_membw_sweep[.<model>].json.
 */

#include <cstdio>
#include <iterator>

#include "bench_util.hh"
#include "core/experiment.hh"
#include "core/report.hh"
#include "core/sweep.hh"

using namespace uasim;
using h264::Variant;

namespace {

/// The --membw-sweep axis: unaligned-over-Altivec speedup per
/// memory-bandwidth point instead of per extra-latency point.
int
runMembwSweep(int argc, char **argv, int execs)
{
    const int bws[] = {0, 8, 16, 32};
    const int numBws = int(std::size(bws));

    std::printf("== Fig 9 (memBW axis): speedup of the unaligned "
                "version over plain\nAltivec under a "
                "bytes-per-cycle memory-bus throttle ==\n(4-way "
                "core, %d executions; bw0 is the unthrottled "
                "bus)\n\n",
                execs);

    const auto grid = core::paperKernelGrid();

    core::SweepPlan plan;
    for (int bw : bws) {
        auto cfg = timing::CoreConfig::fourWayOoO();
        cfg.mem.memBWBytesPerCycle = bw;
        plan.addConfig("bw" + std::to_string(bw), cfg);
    }
    // Unlike the latency axis, the throttle hits aligned and
    // unaligned traffic alike, so BOTH variants replay at every
    // bandwidth point and the ratio is taken per point.
    for (const auto &spec : grid) {
        int alt = plan.addTrace(
            core::kernelTraceJob(spec, Variant::Altivec, execs));
        int unal = plan.addTrace(
            core::kernelTraceJob(spec, Variant::Unaligned, execs));
        for (int b = 0; b < numBws; ++b) {
            plan.addCell(alt, b);
            plan.addCell(unal, b);
        }
    }

    auto runner = bench::makeSweepRunner(argc, argv);
    auto results = runner.run(plan);

    auto artifact = bench::makeResult("fig9_membw_sweep", argc, argv);
    artifact.addParam("execs", json::Value(execs));

    core::TextTable t;
    t.header({"kernel", "bw0", "bw8", "bw16", "bw32"});

    for (int s = 0; s < int(grid.size()); ++s) {
        const int rowBase = s * (2 * numBws);
        std::vector<std::string> cells{grid[s].name()};
        for (int b = 0; b < numBws; ++b) {
            const auto &altivec = results[rowBase + 2 * b].sim;
            const auto &unal = results[rowBase + 2 * b + 1].sim;
            const double speedup =
                double(altivec.cycles) / double(unal.cycles);
            cells.push_back(core::fmt(speedup));
            artifact.addMetric(grid[s].name() + "/bw" +
                                   std::to_string(bws[b]),
                               speedup);
        }
        t.row(cells);
    }
    std::printf("%s\n", t.str().c_str());

    bench::finishArtifact(argc, argv, artifact, results, runner);
    return 0;
}

} // namespace

int
main(int argc, char **argv)
{
    const int execs = bench::sizeFlag(argc, argv, "--execs", 300, 8);
    if (bench::boolFlag(argc, argv, "--membw-sweep"))
        return runMembwSweep(argc, argv, execs);
    const int extras[] = {0, 1, 2, 4, 6};
    const int numExtras = int(std::size(extras));

    std::printf("== Fig 9: performance impact of the latency of "
                "unaligned load and stores ==\n(4-way core, %d "
                "executions; values are speedup of the unaligned\n"
                "version over plain Altivec at each extra latency)\n\n",
                execs);

    const auto grid = core::paperKernelGrid();

    core::SweepPlan plan;
    for (int extra : extras) {
        auto cfg = timing::CoreConfig::fourWayOoO();
        cfg.lat.unalignedLoadExtra = extra;
        cfg.lat.unalignedStoreExtra = extra;
        std::string label = "+";
        label += std::to_string(extra);
        label += "cyc";
        plan.addConfig(std::move(label), cfg);
    }
    // Per kernel: the Altivec baseline on the equal-latency core
    // (extra latency only affects lvxu/stvxu, which it never emits),
    // then the unaligned trace replayed into every latency point.
    for (const auto &spec : grid) {
        int alt = plan.addTrace(
            core::kernelTraceJob(spec, Variant::Altivec, execs));
        int unal = plan.addTrace(
            core::kernelTraceJob(spec, Variant::Unaligned, execs));
        plan.addCell(alt, 0);
        for (int e = 0; e < numExtras; ++e)
            plan.addCell(unal, e);
    }

    auto runner = bench::makeSweepRunner(argc, argv);
    auto results = runner.run(plan);

    auto artifact =
        bench::makeResult("fig9_latency_sensitivity", argc, argv);
    artifact.addParam("execs", json::Value(execs));

    core::TextTable t;
    t.header({"kernel", "equal_lat", "+1cyc", "+2cyc", "+4cyc",
              "+6cyc"});

    for (int s = 0; s < int(grid.size()); ++s) {
        const int rowBase = s * (1 + numExtras);
        const auto &altivec = results[rowBase].sim;
        std::vector<std::string> cells{grid[s].name()};
        for (int e = 0; e < numExtras; ++e) {
            const auto &unal = results[rowBase + 1 + e].sim;
            const double speedup =
                double(altivec.cycles) / double(unal.cycles);
            cells.push_back(core::fmt(speedup));
            artifact.addMetric(grid[s].name() + "/+" +
                                   std::to_string(extras[e]) + "cyc",
                               speedup);
        }
        t.row(cells);
    }
    std::printf("%s\n", t.str().c_str());

    bench::finishArtifact(argc, argv, artifact, results, runner);

    std::printf(
        "Paper reference (section V-C): most kernels keep a clear "
        "speedup through\n+1/+2 cycles (the proposed network costs "
        "+1 load / +2 store); chroma 8x8\nand SAD 16x16 approach or "
        "cross 1.0 at the largest extra latencies; the\nIDCT barely "
        "moves; the matrix IDCT tolerates latency best.\n");
    return 0;
}
