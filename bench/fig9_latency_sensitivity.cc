/**
 * @file
 * Fig 9 reproduction: impact of the realignment-network latency. The
 * unaligned variant is simulated on the 4-way core with 0/+1/+2/+4/+6
 * extra cycles on dynamically unaligned lvxu/stvxu, and reported as
 * speedup over the plain Altivec version (whose cycles are latency-
 * independent).
 */

#include <cstdio>

#include "bench_util.hh"
#include "core/experiment.hh"
#include "core/report.hh"

using namespace uasim;
using core::KernelBench;
using h264::Variant;

int
main(int argc, char **argv)
{
    const int execs = bench::sizeFlag(argc, argv, "--execs", 300, 8);
    const int extras[] = {0, 1, 2, 4, 6};

    std::printf("== Fig 9: performance impact of the latency of "
                "unaligned load and stores ==\n(4-way core, %d "
                "executions; values are speedup of the unaligned\n"
                "version over plain Altivec at each extra latency)\n\n",
                execs);

    core::TextTable t;
    t.header({"kernel", "equal_lat", "+1cyc", "+2cyc", "+4cyc",
              "+6cyc"});

    for (const auto &spec : core::paperKernelGrid()) {
        KernelBench bench(spec);
        auto base_cfg = timing::CoreConfig::fourWayOoO();
        auto altivec = bench.simulate(Variant::Altivec, base_cfg,
                                      execs);
        std::vector<std::string> cells{spec.name()};
        for (int extra : extras) {
            auto cfg = timing::CoreConfig::fourWayOoO();
            cfg.lat.unalignedLoadExtra = extra;
            cfg.lat.unalignedStoreExtra = extra;
            auto unal = bench.simulate(Variant::Unaligned, cfg, execs);
            cells.push_back(core::fmt(double(altivec.cycles) /
                                      double(unal.cycles)));
        }
        t.row(cells);
    }
    std::printf("%s\n", t.str().c_str());

    std::printf(
        "Paper reference (section V-C): most kernels keep a clear "
        "speedup through\n+1/+2 cycles (the proposed network costs "
        "+1 load / +2 store); chroma 8x8\nand SAD 16x16 approach or "
        "cross 1.0 at the largest extra latencies; the\nIDCT barely "
        "moves; the matrix IDCT tolerates latency best.\n");
    return 0;
}
