/**
 * @file
 * Shared helpers for the artifact benches: command-line handling and
 * the paper-reference annotations printed next to measured values.
 */

#ifndef UASIM_BENCH_BENCH_UTIL_HH
#define UASIM_BENCH_BENCH_UTIL_HH

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <exception>
#include <string>

#include "core/sweep.hh"
#include "video/sequence.hh"

namespace uasim::bench {

/// Parse "--execs N" / "--frames N" style flags with a default.
inline int
intFlag(int argc, char **argv, const char *name, int def)
{
    for (int i = 1; i + 1 < argc; ++i) {
        if (std::strcmp(argv[i], name) == 0)
            return std::atoi(argv[i + 1]);
    }
    return def;
}

/// Parse a "--name STR" flag with a default.
inline const char *
stringFlag(int argc, char **argv, const char *name, const char *def)
{
    for (int i = 1; i + 1 < argc; ++i) {
        if (std::strcmp(argv[i], name) == 0)
            return argv[i + 1];
    }
    return def;
}

inline bool
boolFlag(int argc, char **argv, const char *name)
{
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], name) == 0)
            return true;
    }
    return false;
}

/// True when the smoke-test tiny-input path was requested.
inline bool
quickFlag(int argc, char **argv)
{
    return boolFlag(argc, argv, "--quick");
}

/**
 * Sweep worker count ("--threads N"). The default 0 lets SweepRunner
 * pick the hardware concurrency; results are byte-identical at any
 * value (the runner's cell-ordered results are deterministic).
 */
inline int
threadsFlag(int argc, char **argv)
{
    return intFlag(argc, argv, "--threads", 0);
}

/**
 * Persistent trace-cache directory ("--trace-cache DIR"); empty when
 * the flag is absent (no store).
 */
inline std::string
traceCacheFlag(int argc, char **argv)
{
    return stringFlag(argc, argv, "--trace-cache", "");
}

/**
 * SweepRunner configured from the shared bench flags: "--threads N"
 * workers plus, when "--trace-cache DIR" is given, a persistent
 * content-addressed trace store (trace/trace_store.hh). With the
 * store, a second (warm) run of the same grid replays every kernel
 * trace from disk instead of re-emulating it, with byte-identical
 * output. Exits with a diagnostic if DIR cannot be created.
 */
inline core::SweepRunner
makeSweepRunner(int argc, char **argv)
{
    core::SweepRunner runner(threadsFlag(argc, argv));
    const std::string dir = traceCacheFlag(argc, argv);
    if (!dir.empty()) {
        try {
            runner.attachStore(dir);
        } catch (const std::exception &e) {
            std::fprintf(stderr, "--trace-cache: %s\n", e.what());
            std::exit(1);
        }
    }
    return runner;
}

/**
 * Workload-size flag with a --quick override: an explicit "--execs N"
 * wins, otherwise --quick selects @p quickDef (a tiny smoke-test
 * input), otherwise @p def (the paper-scale default).
 */
inline int
sizeFlag(int argc, char **argv, const char *name, int def, int quickDef)
{
    return intFlag(argc, argv, name,
                   quickFlag(argc, argv) ? quickDef : def);
}

/// Smoke-path geometry shared by the scenario programs: QCIF under
/// --quick, CIF otherwise.
inline video::Resolution
quickResolution(bool quick)
{
    return quick ? video::Resolution{176, 144, "qcif"}
                 : video::Resolution{352, 288, "cif"};
}

} // namespace uasim::bench

#endif // UASIM_BENCH_BENCH_UTIL_HH
