/**
 * @file
 * Shared helpers for the artifact benches: command-line handling and
 * the paper-reference annotations printed next to measured values.
 */

#ifndef UASIM_BENCH_BENCH_UTIL_HH
#define UASIM_BENCH_BENCH_UTIL_HH

#include <cstdlib>
#include <cstring>
#include <string>

namespace uasim::bench {

/// Parse "--execs N" / "--frames N" style flags with a default.
inline int
intFlag(int argc, char **argv, const char *name, int def)
{
    for (int i = 1; i + 1 < argc; ++i) {
        if (std::strcmp(argv[i], name) == 0)
            return std::atoi(argv[i + 1]);
    }
    return def;
}

inline bool
boolFlag(int argc, char **argv, const char *name)
{
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], name) == 0)
            return true;
    }
    return false;
}

} // namespace uasim::bench

#endif // UASIM_BENCH_BENCH_UTIL_HH
