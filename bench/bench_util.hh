/**
 * @file
 * Shared helpers for the artifact benches: command-line handling and
 * the paper-reference annotations printed next to measured values.
 */

#ifndef UASIM_BENCH_BENCH_UTIL_HH
#define UASIM_BENCH_BENCH_UTIL_HH

#include <cerrno>
#include <climits>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <exception>
#include <filesystem>
#include <string>
#include <vector>

#include "core/result.hh"
#include "core/sweep.hh"
#include "timing/model.hh"
#include "video/sequence.hh"

namespace uasim::bench {

/// Parse "--execs N" / "--frames N" style flags with a default.
/// Like stringFlag below, a missing or non-numeric operand is fatal:
/// atoi's silent 0 would turn a typo into a wrong-but-exit-0 run.
inline int
intFlag(int argc, char **argv, const char *name, int def)
{
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], name) == 0) {
            if (i + 1 >= argc) {
                std::fprintf(stderr, "%s: missing operand\n", name);
                std::exit(2);
            }
            errno = 0;
            char *end = nullptr;
            const long v = std::strtol(argv[i + 1], &end, 10);
            if (end == argv[i + 1] || *end != '\0' ||
                errno == ERANGE || v < INT_MIN || v > INT_MAX) {
                std::fprintf(stderr, "%s: invalid number \"%s\"\n",
                             name, argv[i + 1]);
                std::exit(2);
            }
            return int(v);
        }
    }
    return def;
}

/// Parse a "--name STR" flag with a default. A flag given without its
/// operand is fatal: silently falling back to the default would make
/// e.g. "--json" (PATH forgotten) look like a passing artifact run.
inline const char *
stringFlag(int argc, char **argv, const char *name, const char *def)
{
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], name) == 0) {
            // A following "--flag" is a forgotten operand, not a
            // value — "--json --quick" must not write a file named
            // "--quick" and exit 0.
            if (i + 1 >= argc ||
                std::strncmp(argv[i + 1], "--", 2) == 0) {
                std::fprintf(stderr, "%s: missing operand\n", name);
                std::exit(2);
            }
            return argv[i + 1];
        }
    }
    return def;
}

inline bool
boolFlag(int argc, char **argv, const char *name)
{
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], name) == 0)
            return true;
    }
    return false;
}

/// True when the smoke-test tiny-input path was requested.
inline bool
quickFlag(int argc, char **argv)
{
    return boolFlag(argc, argv, "--quick");
}

/**
 * Sweep worker count ("--threads N"). The default 0 lets SweepRunner
 * pick the hardware concurrency; results are byte-identical at any
 * value (the runner's cell-ordered results are deterministic).
 */
inline int
threadsFlag(int argc, char **argv)
{
    return intFlag(argc, argv, "--threads", 0);
}

/**
 * Persistent trace-cache directory ("--trace-cache DIR"); empty when
 * the flag is absent (no store).
 */
inline std::string
traceCacheFlag(int argc, char **argv)
{
    return stringFlag(argc, argv, "--trace-cache", "");
}

/**
 * Replay-mode selector ("--replay-mode batched|percell", default
 * batched). batched advances every timing cell of a trace group from
 * one pass over the record stream; percell re-walks the buffer once
 * per cell (the reference oracle). Simulated output is bit-identical
 * either way - only pass count and wall time differ. An unknown mode
 * name is fatal, like every other malformed bench flag.
 */
inline core::ReplayMode
replayModeFlag(int argc, char **argv)
{
    const char *name =
        stringFlag(argc, argv, "--replay-mode", "batched");
    core::ReplayMode mode;
    if (!core::parseReplayMode(name, mode)) {
        std::fprintf(stderr,
                     "--replay-mode: unknown mode \"%s\" (expected "
                     "\"batched\" or \"percell\")\n",
                     name);
        std::exit(2);
    }
    return mode;
}

/**
 * Timing-backend selector ("--timing-model pipeline|ooo", default
 * pipeline). Every timing cell of the run simulates on the named
 * TimingModel backend (SweepRunner::setTimingModel overrides each
 * config's model field); results from different backends are
 * different experiments, so artifacts carry the model as a gating
 * "timing_model" param and non-default models get model-suffixed
 * canonical artifact names. An unknown name is fatal, like every
 * other malformed bench flag.
 */
inline std::string
timingModelFlag(int argc, char **argv)
{
    const std::string name =
        stringFlag(argc, argv, "--timing-model", "pipeline");
    if (!timing::isTimingModel(name)) {
        std::string known;
        for (const auto &m : timing::timingModelNames()) {
            if (!known.empty())
                known += ", ";
            known += '"';
            known += m;
            known += '"';
        }
        std::fprintf(stderr,
                     "--timing-model: unknown model \"%s\" "
                     "(expected %s)\n",
                     name.c_str(), known.c_str());
        std::exit(2);
    }
    return name;
}

/**
 * SweepRunner configured from the shared bench flags: "--threads N"
 * workers, "--replay-mode batched|percell" group replay,
 * "--timing-model pipeline|ooo" backend selection, plus, when
 * "--trace-cache DIR" is given, a persistent content-addressed trace
 * store (trace/trace_store.hh). With the store, a second (warm) run
 * of the same grid replays every kernel trace from disk instead of
 * re-emulating it, with byte-identical output. Exits with a
 * diagnostic if DIR cannot be created.
 */
inline core::SweepRunner
makeSweepRunner(int argc, char **argv)
{
    core::SweepRunner runner(threadsFlag(argc, argv));
    runner.setReplayMode(replayModeFlag(argc, argv));
    runner.setTimingModel(timingModelFlag(argc, argv));
    const std::string dir = traceCacheFlag(argc, argv);
    if (dir.empty() && boolFlag(argc, argv, "--trace-cache")) {
        // Same rule as --json: an empty DIR (unset shell variable)
        // must not silently run uncached with exit 0.
        std::fprintf(stderr, "--trace-cache: empty DIR operand\n");
        std::exit(2);
    }
    if (!dir.empty()) {
        try {
            runner.attachStore(dir);
        } catch (const std::exception &e) {
            std::fprintf(stderr, "--trace-cache: %s\n", e.what());
            std::exit(1);
        }
    }
    return runner;
}

/**
 * Machine-readable artifact path ("--json PATH"); empty when absent.
 */
inline std::string
jsonFlag(int argc, char **argv)
{
    return stringFlag(argc, argv, "--json", "");
}

/**
 * Start a BenchResult for this bench: names it and records the shared
 * flags every bench honors ("quick" first, so artifacts lead with the
 * workload scale; then "timing_model", because a different backend is
 * a different experiment and must gate baseline comparison).
 */
inline core::BenchResult
makeResult(const char *bench, int argc, char **argv)
{
    core::BenchResult r;
    r.bench = bench;
    r.addParam("quick", json::Value(quickFlag(argc, argv)));
    r.addParam("timing_model",
               json::Value(timingModelFlag(argc, argv)));
    return r;
}

/**
 * Emit the BENCH_<name>.json artifact when "--json PATH" was given.
 * PATH naming an existing directory (or ending in '/') places the
 * canonically named artifact inside it - BENCH_<bench>.json on the
 * default backend, BENCH_<bench>.<model>.json under a non-default
 * "--timing-model" (per-model runs are separate experiments with
 * separate baselines, and the suffix keeps them paired by filename in
 * baseline diffs); otherwise the
 * artifact is written to PATH exactly. The write is atomic
 * (tmp+rename) and a failure is fatal: CI consumes these artifacts,
 * so a silently missing one must not look like a passing run.
 */
inline void
writeResultArtifact(int argc, char **argv,
                    const core::BenchResult &result)
{
    std::string path = jsonFlag(argc, argv);
    if (path.empty()) {
        // "--json ''" (e.g. an unset shell variable) is present but
        // useless; treat it like a missing operand, not "no flag".
        if (boolFlag(argc, argv, "--json")) {
            std::fprintf(stderr, "--json: empty PATH operand\n");
            std::exit(2);
        }
        return;
    }
    std::error_code ec;
    if (path.back() == '/' ||
        std::filesystem::is_directory(path, ec)) {
        const std::string model = timingModelFlag(argc, argv);
        std::string file = "BENCH_" + result.bench;
        if (model != "pipeline") {
            file += '.';
            file += model;
        }
        file += ".json";
        path = (std::filesystem::path(path) / file).string();
    }
    try {
        core::saveResultFile(result, path);
    } catch (const std::exception &e) {
        std::fprintf(stderr, "--json: %s\n", e.what());
        std::exit(1);
    }
    std::fprintf(stderr, "[json] wrote %s\n", path.c_str());
}

/**
 * Shared epilogue for the sweep benches: attach every cell result and
 * the runner statistics to the artifact, then emit it when "--json"
 * was given.
 */
inline void
finishArtifact(int argc, char **argv, core::BenchResult &artifact,
               const std::vector<core::SweepCellResult> &results,
               const core::SweepRunner &runner)
{
    artifact.addCells(results);
    artifact.setStats(runner.stats());
    writeResultArtifact(argc, argv, artifact);
}

/**
 * Workload-size flag with a --quick override: an explicit "--execs N"
 * wins, otherwise --quick selects @p quickDef (a tiny smoke-test
 * input), otherwise @p def (the paper-scale default).
 */
inline int
sizeFlag(int argc, char **argv, const char *name, int def, int quickDef)
{
    return intFlag(argc, argv, name,
                   quickFlag(argc, argv) ? quickDef : def);
}

/// Smoke-path geometry shared by the scenario programs: QCIF under
/// --quick, CIF otherwise.
inline video::Resolution
quickResolution(bool quick)
{
    return quick ? video::Resolution{176, 144, "qcif"}
                 : video::Resolution{352, 288, "cif"};
}

} // namespace uasim::bench

#endif // UASIM_BENCH_BENCH_UTIL_HH
